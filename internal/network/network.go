// Package network simulates the dedicated 10 Mbps Ethernet connecting the
// prototype's sixteen workstations.
//
// Each message pays sender CPU (the V-kernel send path), waits for the
// shared bus if it is busy, occupies the wire for size·PerByte, and is
// delivered into the destination node's inbox after the wire latency. The
// receiver pays its CPU cost when it picks the message up with Recv. The
// network keeps per-kind message and byte counts — the paper's analysis
// argues in exactly these terms (number of messages, data motion).
package network

import (
	"fmt"

	"munin/internal/model"
	"munin/internal/sim"
	"munin/internal/wire"
)

// HeaderBytes is the per-message framing overhead added to every payload
// (Ethernet framing plus V-kernel style message header).
const HeaderBytes = 34

// Envelope is a message in flight or delivered.
type Envelope struct {
	Src, Dst    int
	Msg         wire.Message
	Bytes       int // payload + HeaderBytes
	SentAt      sim.Time
	DeliveredAt sim.Time

	// Borrowed marks a zero-copy delivery: Msg was decoded with
	// wire.UnmarshalView and its byte payloads alias the pooled receive
	// buffer Buf. The consumer must call Release exactly once after it
	// is done with Msg, and must re-own (wire.Own / wire.OwnEntry)
	// anything it retains past that point.
	Borrowed bool
	// Buf is the pooled receive buffer backing a borrowed Msg (nil on
	// copying transports). A field rather than a closure so synthetic
	// batch-rider envelopes stay allocation-free.
	Buf *[]byte
}

// Release returns a borrowed envelope's receive buffer to the pool.
// Safe (and a no-op) on envelopes that borrow nothing; must not be
// called twice.
func (e *Envelope) Release() {
	if e.Buf != nil {
		wire.PutBuf(e.Buf)
		e.Buf = nil
		e.Borrowed = false
	}
}

// Stats aggregates traffic counts. Messages and Bytes attribute traffic
// to protocol message kinds: a batch envelope's riders are counted
// individually under their own kinds (so per-kind tables mean the same
// thing batched or not), while the envelope's framing and wire header
// are attributed to wire.KindBatch bytes. Sends counts transport sends —
// the number the batching fast path exists to reduce.
type Stats struct {
	Messages map[wire.Kind]int
	Bytes    map[wire.Kind]int
	// Sends counts transport sends (envelopes): an unbatched message is
	// one send; a wire.Batch of k messages is one send carrying k.
	Sends int
	// BatchEnvelopes counts the wire.Batch envelopes among Sends, and
	// BatchedMessages the protocol messages that rode inside them.
	BatchEnvelopes  int
	BatchedMessages int
	// Delivered counts envelopes delivered into destination inboxes.
	// After a quiescent run without fault injection Delivered == Sends:
	// the transport conserves messages (the counter conservation tests
	// assert exactly this per engine × transport).
	Delivered int
}

// CountSend records one transport send of msg whose on-the-wire size —
// encoded payload plus framing header — is size bytes. For a batch
// envelope every rider is counted under its own kind with its own
// encoded size, and the envelope overhead (batch framing plus the one
// shared header) lands under wire.KindBatch.
func (s *Stats) CountSend(msg wire.Message, size int) {
	s.Sends++
	if b, ok := msg.(wire.Batch); ok {
		s.BatchEnvelopes++
		s.BatchedMessages += len(b.Msgs)
		inner := 0
		for _, sub := range b.Msgs {
			n := wire.Size(sub)
			s.Messages[sub.Kind()]++
			s.Bytes[sub.Kind()] += n
			inner += n
		}
		s.Bytes[wire.KindBatch] += size - inner
		return
	}
	s.Messages[msg.Kind()]++
	s.Bytes[msg.Kind()] += size
}

// TotalMessages returns the total protocol message count (batch riders
// counted individually; envelopes not double-counted).
func (s *Stats) TotalMessages() int {
	n := 0
	for _, v := range s.Messages {
		n += v
	}
	return n
}

// TotalBytes returns the total byte count (including headers and batch
// framing).
func (s *Stats) TotalBytes() int {
	n := 0
	for _, v := range s.Bytes {
		n += v
	}
	return n
}

// Network is the shared segment. It is created for a fixed node count.
type Network struct {
	sim     *sim.Sim
	cost    model.CostModel
	inboxes []*sim.Mailbox

	busFreeAt sim.Time
	stats     Stats

	// pairLast tracks the last delivery time per (src,dst) so fault
	//-injected reordering never violates per-pair FIFO order.
	pairLast map[[2]int]sim.Time

	// Trace, if set, observes every delivered envelope.
	Trace func(Envelope)

	// Faults, if set, injects drops, partitions and reordering.
	Faults *Faults
}

// MaxNodes is the largest machine any transport hosts — the wire
// format's 8-bit node ids are the structural ceiling. core.MaxProcessors
// re-exports it for configuration validation.
const MaxNodes = 256

// New creates a network of n nodes over the given simulation and cost
// model.
func New(s *sim.Sim, cost model.CostModel, n int) *Network {
	if n <= 0 || n > MaxNodes {
		panic(fmt.Sprintf("network: invalid node count %d", n))
	}
	nw := &Network{
		sim:      s,
		cost:     cost,
		pairLast: make(map[[2]int]sim.Time),
		stats: Stats{
			Messages: make(map[wire.Kind]int),
			Bytes:    make(map[wire.Kind]int),
		},
	}
	for i := 0; i < n; i++ {
		nw.inboxes = append(nw.inboxes, s.NewMailbox(fmt.Sprintf("inbox[%d]", i)))
	}
	return nw
}

// Nodes returns the number of nodes.
func (nw *Network) Nodes() int { return len(nw.inboxes) }

// Stats returns the accumulated traffic statistics.
func (nw *Network) Stats() *Stats { return &nw.stats }

// Send transmits msg from p's node to dst. It charges p the send-path CPU
// (against p's current time kind), models bus contention and wire time,
// and delivers into dst's inbox. The encoded form is round-tripped through
// wire.Unmarshal so that codec and simulation can never drift apart.
func (nw *Network) Send(p *sim.Proc, src, dst int, msg wire.Message) {
	if dst < 0 || dst >= len(nw.inboxes) {
		panic(fmt.Sprintf("network: send to invalid node %d", dst))
	}
	if src == dst {
		panic(fmt.Sprintf("network: node %d sending %v to itself", src, msg.Kind()))
	}
	bp := wire.GetBuf()
	encoded := wire.AppendTo(*bp, msg)
	*bp = encoded
	decoded, err := wire.Unmarshal(encoded)
	if err != nil {
		panic(fmt.Sprintf("network: message %v does not round-trip: %v", msg.Kind(), err))
	}
	size := len(encoded) + HeaderBytes
	wire.PutBuf(bp)

	p.Advance(nw.cost.SendCPU(wire.Riders(msg)))
	if nw.Faults.Cut(src, dst, decoded) {
		// Fault injection operates on whole envelopes: a dropped batch
		// loses every rider at once, exactly as a lost frame would.
		return
	}

	nw.stats.CountSend(decoded, size)

	now := nw.sim.Now()
	start := now
	if nw.cost.BusSerialized && nw.busFreeAt > start {
		start = nw.busFreeAt
	}
	wireDone := start + nw.cost.MsgTime(size)
	if nw.cost.BusSerialized {
		nw.busFreeAt = wireDone
	}
	deliver := wireDone + nw.cost.WireLatency
	if nw.Faults != nil && nw.Faults.ReorderSeed != 0 {
		// Fault-injected reordering: jitter the delivery so messages
		// from other senders can overtake, but never behind this pair's
		// previous delivery (per-pair FIFO always holds).
		if j := nw.Faults.Jitter(int64(nw.cost.WireLatency) * 8); j > 0 {
			deliver += sim.Time(j)
			nw.Faults.CountReorder()
		}
		pair := [2]int{src, dst}
		if last := nw.pairLast[pair]; deliver < last {
			deliver = last
		}
		nw.pairLast[pair] = deliver
	}

	env := Envelope{Src: src, Dst: dst, Msg: decoded, Bytes: size, SentAt: now, DeliveredAt: deliver}
	nw.sim.At(deliver, func() {
		nw.stats.Delivered++
		if nw.Trace != nil {
			nw.Trace(env)
		}
		nw.inboxes[dst].Put(env)
	})
}

// Broadcast sends msg from src to every other node as separate messages
// (the prototype's dynamic copyset determination does exactly this, §3.3).
func (nw *Network) Broadcast(p *sim.Proc, src int, msg wire.Message) {
	for dst := range nw.inboxes {
		if dst != src {
			nw.Send(p, src, dst, msg)
		}
	}
}

// Recv blocks p until a message arrives for node and charges the
// receive-path CPU.
func (nw *Network) Recv(p *sim.Proc, node int) Envelope {
	env := nw.inboxes[node].Get(p).(Envelope)
	p.Advance(nw.cost.MsgRecvCPU)
	return env
}

// TryRecv returns a pending message for node without blocking or charging
// CPU; used by dispatchers to drain before idling.
func (nw *Network) TryRecv(node int) (Envelope, bool) {
	v, ok := nw.inboxes[node].TryGet()
	if !ok {
		return Envelope{}, false
	}
	return v.(Envelope), true
}

// TryRecvCharged is TryRecv with the receive-path CPU charged to p on
// success — the rt.Transport TryRecv contract.
func (nw *Network) TryRecvCharged(p *sim.Proc, node int) (Envelope, bool) {
	env, ok := nw.TryRecv(node)
	if ok {
		p.Advance(nw.cost.MsgRecvCPU)
	}
	return env, ok
}

// Pending reports the number of undelivered messages queued for node.
func (nw *Network) Pending(node int) int { return nw.inboxes[node].Len() }
