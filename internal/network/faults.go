package network

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"munin/internal/wire"
)

// Faults injects failures into a transport for testing error paths. The
// zero value injects nothing. One Faults value may be shared by code
// running on many nodes concurrently (the live transports), so the
// counters are atomic and the reorder generator is locked.
//
// Faults operate on whole transport envelopes: under batching
// (wire.Batch) a drop loses the envelope with every rider inside it, and
// reordering moves the envelope as a unit — exactly the failure modes a
// real lost or overtaken frame would produce. A partial batch cannot be
// observed.
type Faults struct {
	// Drop, if non-nil, is consulted once per envelope; returning true
	// silently discards it (a lost packet). Under batching msg may be a
	// wire.Batch — dropping it drops every rider. The function may be
	// called concurrently from many sender goroutines on the live
	// transports.
	Drop func(src, dst int, msg wire.Message) bool

	// Partition assigns each node to a group; messages crossing groups
	// are discarded (a network partition). Nil or short slices leave
	// unlisted nodes in group 0.
	Partition []int

	// ReorderSeed, when nonzero, enables bounded delivery reordering at
	// each destination: a message may overtake earlier messages from
	// OTHER senders. Per-(src,dst) FIFO order is always preserved (the
	// guarantee TCP gives), but cross-sender CAUSAL order is not — which
	// is exactly the order release consistency relies on when update
	// acknowledgements are not awaited. This knob exists for
	// transport-level error-path tests; a full protocol run under
	// reordering needs Config.AwaitUpdateAcks to stay consistent.
	ReorderSeed int64

	dropped   atomic.Int64
	reordered atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand
}

// Dropped returns the number of messages discarded by Drop or Partition.
func (f *Faults) Dropped() int { return int(f.dropped.Load()) }

// Reordered returns the number of deliveries perturbed by reordering.
func (f *Faults) Reordered() int { return int(f.reordered.Load()) }

// group returns the partition group of node n.
func (f *Faults) group(n int) int {
	if n < len(f.Partition) {
		return f.Partition[n]
	}
	return 0
}

// Cut reports whether a message from src to dst must be discarded, and
// counts it. A nil receiver never cuts.
func (f *Faults) Cut(src, dst int, msg wire.Message) bool {
	if f == nil {
		return false
	}
	if f.Drop != nil && f.Drop(src, dst, msg) {
		f.dropped.Add(1)
		return true
	}
	if len(f.Partition) > 0 && f.group(src) != f.group(dst) {
		f.dropped.Add(1)
		return true
	}
	return false
}

// Jitter returns a deterministic pseudo-random value in [0, n) for
// reordering decisions, or 0 when reordering is disabled. CountReorder
// records that a delivery was actually perturbed.
func (f *Faults) Jitter(n int64) int64 {
	if f == nil || f.ReorderSeed == 0 || n <= 0 {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(f.ReorderSeed))
	}
	return f.rng.Int63n(n)
}

// CountReorder records one perturbed delivery.
func (f *Faults) CountReorder() {
	if f != nil {
		f.reordered.Add(1)
	}
}
