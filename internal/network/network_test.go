package network

import (
	"testing"

	"munin/internal/model"
	"munin/internal/sim"
	"munin/internal/wire"
)

func testModel() model.CostModel {
	m := model.Default()
	// Round numbers for easy assertions.
	m.MsgSendCPU = 100 * sim.Microsecond
	m.MsgRecvCPU = 50 * sim.Microsecond
	m.WireLatency = 10 * sim.Microsecond
	m.PerByte = 1 * sim.Microsecond
	m.BusSerialized = true
	return m
}

func TestSendDeliversAndTimes(t *testing.T) {
	s := sim.New()
	nw := New(s, testModel(), 2)
	var got Envelope
	var recvAt sim.Time
	s.Spawn("sender", func(p *sim.Proc) {
		nw.Send(p, 0, 1, wire.BarrierRelease{Barrier: 7})
	})
	s.Spawn("receiver", func(p *sim.Proc) {
		got = nw.Recv(p, 1)
		recvAt = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Msg.(wire.BarrierRelease).Barrier != 7 {
		t.Errorf("delivered %#v", got.Msg)
	}
	size := wire.Size(wire.BarrierRelease{Barrier: 7}) + HeaderBytes
	// Timeline: send CPU 100µs, wire size µs, latency 10µs, recv CPU 50µs.
	wantDeliver := 100*sim.Microsecond + sim.Time(size)*sim.Microsecond + 10*sim.Microsecond
	if got.DeliveredAt != wantDeliver {
		t.Errorf("DeliveredAt = %v, want %v", got.DeliveredAt, wantDeliver)
	}
	if recvAt != wantDeliver+50*sim.Microsecond {
		t.Errorf("recvAt = %v, want %v", recvAt, wantDeliver+50*sim.Microsecond)
	}
	if got.Src != 0 || got.Dst != 1 || got.Bytes != size {
		t.Errorf("envelope = %+v", got)
	}
}

func TestBusSerialization(t *testing.T) {
	m := testModel()
	run := func(serialized bool) sim.Time {
		m.BusSerialized = serialized
		s := sim.New()
		nw := New(s, m, 3)
		payload := make([]byte, 1000)
		s.Spawn("a", func(p *sim.Proc) { nw.Send(p, 0, 2, wire.MPData{Tag: 1, Payload: payload}) })
		s.Spawn("b", func(p *sim.Proc) { nw.Send(p, 1, 2, wire.MPData{Tag: 2, Payload: payload}) })
		var last sim.Time
		s.Spawn("recv", func(p *sim.Proc) {
			nw.Recv(p, 2)
			nw.Recv(p, 2)
			last = p.Now()
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	ser, par := run(true), run(false)
	if ser <= par {
		t.Errorf("serialized bus (%v) should be slower than free bus (%v)", ser, par)
	}
}

func TestSendChargesSenderCPU(t *testing.T) {
	s := sim.New()
	nw := New(s, testModel(), 2)
	var user sim.Time
	var proc *sim.Proc
	proc = s.Spawn("sender", func(p *sim.Proc) {
		nw.Send(p, 0, 1, wire.UpdateAck{Count: 1})
		user = p.UserTime()
	})
	s.Spawn("receiver", func(p *sim.Proc) { nw.Recv(p, 1) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	_ = proc
	if user != 100*sim.Microsecond {
		t.Errorf("sender charged %v, want 100µs", user)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := sim.New()
	nw := New(s, testModel(), 4)
	s.Spawn("sender", func(p *sim.Proc) {
		nw.Send(p, 0, 1, wire.UpdateAck{Count: 1})
		nw.Send(p, 0, 2, wire.UpdateAck{Count: 2})
		nw.Broadcast(p, 0, wire.CopysetQuery{From: 0})
	})
	for i := 1; i < 4; i++ {
		i := i
		s.Spawn("recv", func(p *sim.Proc) {
			nw.Recv(p, i)
			if i <= 2 {
				nw.Recv(p, i)
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if st.Messages[wire.KindUpdateAck] != 2 {
		t.Errorf("update-ack count = %d, want 2", st.Messages[wire.KindUpdateAck])
	}
	if st.Messages[wire.KindCopysetQuery] != 3 {
		t.Errorf("copyset-query count = %d, want 3 (broadcast to 3 peers)", st.Messages[wire.KindCopysetQuery])
	}
	if st.TotalMessages() != 5 {
		t.Errorf("total = %d, want 5", st.TotalMessages())
	}
	if st.TotalBytes() <= 5*HeaderBytes {
		t.Errorf("total bytes = %d, implausibly small", st.TotalBytes())
	}
}

func TestSelfSendPanics(t *testing.T) {
	s := sim.New()
	nw := New(s, testModel(), 2)
	s.Spawn("sender", func(p *sim.Proc) {
		nw.Send(p, 0, 0, wire.UpdateAck{})
	})
	if err := s.Run(); err == nil {
		t.Error("self-send did not error")
	}
}

func TestInvalidDestinationPanics(t *testing.T) {
	s := sim.New()
	nw := New(s, testModel(), 2)
	s.Spawn("sender", func(p *sim.Proc) {
		nw.Send(p, 0, 5, wire.UpdateAck{})
	})
	if err := s.Run(); err == nil {
		t.Error("invalid destination did not error")
	}
}

func TestTraceObservesDeliveries(t *testing.T) {
	s := sim.New()
	nw := New(s, testModel(), 2)
	var traced []Envelope
	nw.Trace = func(e Envelope) { traced = append(traced, e) }
	s.Spawn("sender", func(p *sim.Proc) {
		nw.Send(p, 0, 1, wire.UpdateAck{Count: 9})
	})
	s.Spawn("receiver", func(p *sim.Proc) { nw.Recv(p, 1) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(traced) != 1 || traced[0].Msg.(wire.UpdateAck).Count != 9 {
		t.Errorf("traced = %+v", traced)
	}
}

func TestTryRecvAndPending(t *testing.T) {
	s := sim.New()
	nw := New(s, testModel(), 2)
	s.Spawn("sender", func(p *sim.Proc) {
		nw.Send(p, 0, 1, wire.UpdateAck{Count: 1})
	})
	s.Spawn("receiver", func(p *sim.Proc) {
		if _, ok := nw.TryRecv(1); ok {
			t.Error("TryRecv before delivery succeeded")
		}
		p.Advance(10 * sim.Millisecond)
		if nw.Pending(1) != 1 {
			t.Errorf("Pending = %d, want 1", nw.Pending(1))
		}
		if _, ok := nw.TryRecv(1); !ok {
			t.Error("TryRecv after delivery failed")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOBetweenPair(t *testing.T) {
	s := sim.New()
	nw := New(s, testModel(), 2)
	s.Spawn("sender", func(p *sim.Proc) {
		for i := uint32(0); i < 5; i++ {
			nw.Send(p, 0, 1, wire.UpdateAck{Count: i})
		}
	})
	var got []uint32
	s.Spawn("receiver", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, nw.Recv(p, 1).Msg.(wire.UpdateAck).Count)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != uint32(i) {
			t.Fatalf("got = %v, want in-order", got)
		}
	}
}
