package model

import (
	"testing"

	"munin/internal/sim"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
}

func TestValidateRejectsNegative(t *testing.T) {
	m := Default()
	m.FaultTrap = -1
	if err := m.Validate(); err == nil {
		t.Error("negative FaultTrap accepted")
	}
}

func TestValidateRejectsZeroPerByte(t *testing.T) {
	m := Default()
	m.PerByte = 0
	if err := m.Validate(); err == nil {
		t.Error("zero PerByte accepted")
	}
}

func TestValidateRejectsZeroAppOps(t *testing.T) {
	m := Default()
	m.MatMulOp = 0
	if err := m.Validate(); err == nil {
		t.Error("zero MatMulOp accepted")
	}
}

func TestMsgTimeIs10Mbps(t *testing.T) {
	m := Default()
	// 10 Mbps = 1.25 MB/s → 8192 bytes ≈ 6.55 ms. With 0.8 µs/byte we
	// expect exactly 8192 * 800 ns.
	got := m.MsgTime(8192)
	want := sim.Time(8192) * 800 * sim.Nanosecond
	if got != want {
		t.Errorf("MsgTime(8192) = %v, want %v", got, want)
	}
}

func TestCopyCostScalesLinearly(t *testing.T) {
	m := Default()
	if m.CopyCost(2000) != 2*m.CopyCost(1000) {
		t.Error("CopyCost not linear")
	}
	if m.CopyCost(0) != 0 {
		t.Error("CopyCost(0) != 0")
	}
}

func TestTwinCopyIsMillisecondScale(t *testing.T) {
	// Table 2's "Copy object" for an 8 KB object is on the order of a
	// millisecond; the calibration should stay in that regime.
	m := Default()
	c := m.CopyCost(8192)
	if c < 500*sim.Microsecond || c > 5*sim.Millisecond {
		t.Errorf("8 KB twin copy = %v, outside millisecond scale", c)
	}
}

func TestSmallMessageCostIsMillisecondScale(t *testing.T) {
	// A V-kernel style small-message exchange cost ~1–3 ms one way.
	m := Default()
	oneWay := m.MsgSendCPU + m.WireLatency + m.MsgTime(64) + m.MsgRecvCPU
	if oneWay < 500*sim.Microsecond || oneWay > 5*sim.Millisecond {
		t.Errorf("small message one-way = %v, outside expected regime", oneWay)
	}
}
