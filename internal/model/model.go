// Package model holds the virtual-time cost model for the Munin
// reproduction.
//
// The paper's evaluation ran on 16 SUN-3/60 workstations connected by a
// dedicated 10 Mbps Ethernet, under a modified V kernel. We do not have
// that hardware; instead every operation the prototype paid real time for
// (message sends, page faults, page copies, diff encode/decode, application
// arithmetic) charges virtual time from this model. The default constants
// are calibrated to the magnitudes the paper reports (Table 2 totals are
// milliseconds for an 8 KB object; V-kernel message exchanges cost a couple
// of milliseconds; the CPUs run a few MIPS), so the reproduced tables have
// the paper's shape even though absolute numbers differ from the 1991
// testbed.
package model

import (
	"fmt"

	"munin/internal/sim"
)

// CostModel is the complete set of virtual-time constants. A zero value is
// invalid; start from Default and adjust.
type CostModel struct {
	// --- Network (10 Mbps Ethernet + V-kernel style messaging) ---

	// MsgSendCPU is processor time spent in the send path per message.
	MsgSendCPU sim.Time
	// MsgRecvCPU is processor time spent in the receive path per message.
	MsgRecvCPU sim.Time
	// WireLatency is propagation plus controller latency per message.
	WireLatency sim.Time
	// PerByte is wire time per payload byte (10 Mbps = 0.8 µs/byte).
	PerByte sim.Time
	// BatchPerMsgCPU is the incremental send-path cost per additional
	// message riding a batch envelope (wire.Batch): the first rider pays
	// the full MsgSendCPU (one kernel send), each further rider only the
	// marshaling-and-append work. Receivers likewise pay MsgRecvCPU once
	// per envelope, then the dispatch cost (RequestHandlerCPU) per rider.
	BatchPerMsgCPU sim.Time
	// BusSerialized serializes wire occupancy as on a shared Ethernet
	// segment: a message cannot start transmitting until the bus is free.
	BusSerialized bool

	// --- Virtual memory / fault handling ---

	// FaultTrap is the cost to take a protection fault, invoke the Munin
	// root thread, and resume the faulted user thread afterwards
	// (Table 2 "Handle Fault").
	FaultTrap sim.Time
	// PageMapOp is the cost of one page-table manipulation (map a page,
	// change protection).
	PageMapOp sim.Time
	// CopyPerByte is the cost per byte of copying an object to make a
	// twin (Table 2 "Copy object").
	CopyPerByte sim.Time

	// --- Diff encode/decode (Table 2 "Encode"/"Decode") ---

	// DiffScanPerWord is the word-by-word comparison cost against the twin.
	DiffScanPerWord sim.Time
	// DiffEncodePerWord is the cost of emitting one changed word.
	DiffEncodePerWord sim.Time
	// DiffRunOverhead is the cost of opening one run in the encoding.
	DiffRunOverhead sim.Time
	// DiffDecodePerWord is the cost of merging one changed word remotely.
	DiffDecodePerWord sim.Time
	// DiffDecodePerRun is the per-run overhead while decoding.
	DiffDecodePerRun sim.Time

	// --- Runtime bookkeeping ---

	// DirLookup is one data-object-directory hash lookup.
	DirLookup sim.Time
	// LockHandlerCPU is the processing cost per lock protocol message.
	LockHandlerCPU sim.Time
	// BarrierHandlerCPU is the processing cost per barrier arrival/release.
	BarrierHandlerCPU sim.Time
	// RequestHandlerCPU is the baseline cost to dispatch any incoming
	// protocol request on the Munin root thread.
	RequestHandlerCPU sim.Time

	// --- Adaptive protocol engine (internal/adapt) ---

	// AdaptClassifyCPU is the cost of classifying one object's access
	// profile against the Table 1 taxonomy at a release point.
	AdaptClassifyCPU sim.Time
	// AdaptSwitchCPU is the cost of rewriting one directory entry's
	// protocol selection when an annotation switch commits or applies.
	AdaptSwitchCPU sim.Time

	// --- Lazy release consistency engine (internal/lrc) ---

	// LrcNoticeCPU is the cost of recording or absorbing one write
	// notice (an interval's entry for one object): a hash insert plus a
	// vector-timestamp comparison.
	LrcNoticeCPU sim.Time
	// LrcDiffFetchCPU is the per-object processing cost of a diff
	// request/response exchange, on top of the modeled message costs and
	// the diff encode/decode charges (locating the interval records,
	// assembling the response).
	LrcDiffFetchCPU sim.Time

	// --- Application compute (both Munin and message-passing versions
	// charge these identically, as the paper requires the computational
	// components to be identical) ---

	// MatMulOp is one multiply-accumulate of the matrix-multiply inner
	// loop, including index arithmetic (≈ 3 MIPS-era CPU).
	MatMulOp sim.Time
	// SORPoint is one grid-point update of the SOR sweep (four loads,
	// average, store, plus loop overhead).
	SORPoint sim.Time
	// MemTouchPerByte is bulk memory-copy cost (message-passing versions
	// copying received arrays into place).
	MemTouchPerByte sim.Time
}

// Default returns the calibrated 1991-era cost model used by all
// experiments.
func Default() CostModel {
	return CostModel{
		MsgSendCPU:  600 * sim.Microsecond,
		MsgRecvCPU:  500 * sim.Microsecond,
		WireLatency: 100 * sim.Microsecond,
		PerByte:     800 * sim.Nanosecond, // 10 Mbps
		// Appending an already-encoded rider to an open envelope is an
		// order of magnitude cheaper than a full kernel send path.
		BatchPerMsgCPU: 60 * sim.Microsecond,
		BusSerialized:  true,

		FaultTrap:   700 * sim.Microsecond,
		PageMapOp:   100 * sim.Microsecond,
		CopyPerByte: 130 * sim.Nanosecond, // 8 KB twin ≈ 1.1 ms

		DiffScanPerWord:   150 * sim.Nanosecond, // 8 KB scan ≈ 0.31 ms
		DiffEncodePerWord: 100 * sim.Nanosecond,
		DiffRunOverhead:   300 * sim.Nanosecond,
		DiffDecodePerWord: 120 * sim.Nanosecond,
		DiffDecodePerRun:  250 * sim.Nanosecond,

		DirLookup:         30 * sim.Microsecond,
		LockHandlerCPU:    300 * sim.Microsecond,
		BarrierHandlerCPU: 200 * sim.Microsecond,
		RequestHandlerCPU: 150 * sim.Microsecond,

		// A classification is a handful of counter comparisons; a switch
		// rewrites one directory entry and re-protects its pages (the
		// page-table work is charged separately via PageMapOp).
		AdaptClassifyCPU: 20 * sim.Microsecond,
		AdaptSwitchCPU:   60 * sim.Microsecond,

		// A write notice is a few words of bookkeeping; a diff fetch
		// walks the record store and builds a response (the diff bytes
		// themselves are charged via the Diff* constants).
		LrcNoticeCPU:    15 * sim.Microsecond,
		LrcDiffFetchCPU: 80 * sim.Microsecond,

		MatMulOp: 3 * sim.Microsecond,
		// A SUN-3/60's 68881 coprocessor delivers floating point at a
		// few microseconds per operation once compiler-generated loads,
		// stores and loop overhead are counted: a five-FLOP stencil
		// point lands in the tens of microseconds.
		SORPoint:        35 * sim.Microsecond,
		MemTouchPerByte: 250 * sim.Nanosecond,
	}
}

// Validate reports an error if any constant is nonsensical (negative, or a
// zero that would make an experiment degenerate).
func (m CostModel) Validate() error {
	type field struct {
		name string
		v    sim.Time
	}
	fields := []field{
		{"MsgSendCPU", m.MsgSendCPU},
		{"MsgRecvCPU", m.MsgRecvCPU},
		{"WireLatency", m.WireLatency},
		{"PerByte", m.PerByte},
		{"BatchPerMsgCPU", m.BatchPerMsgCPU},
		{"FaultTrap", m.FaultTrap},
		{"PageMapOp", m.PageMapOp},
		{"CopyPerByte", m.CopyPerByte},
		{"DiffScanPerWord", m.DiffScanPerWord},
		{"DiffEncodePerWord", m.DiffEncodePerWord},
		{"DiffRunOverhead", m.DiffRunOverhead},
		{"DiffDecodePerWord", m.DiffDecodePerWord},
		{"DiffDecodePerRun", m.DiffDecodePerRun},
		{"DirLookup", m.DirLookup},
		{"LockHandlerCPU", m.LockHandlerCPU},
		{"BarrierHandlerCPU", m.BarrierHandlerCPU},
		{"RequestHandlerCPU", m.RequestHandlerCPU},
		{"AdaptClassifyCPU", m.AdaptClassifyCPU},
		{"AdaptSwitchCPU", m.AdaptSwitchCPU},
		{"LrcNoticeCPU", m.LrcNoticeCPU},
		{"LrcDiffFetchCPU", m.LrcDiffFetchCPU},
		{"MatMulOp", m.MatMulOp},
		{"SORPoint", m.SORPoint},
		{"MemTouchPerByte", m.MemTouchPerByte},
	}
	for _, f := range fields {
		if f.v < 0 {
			return fmt.Errorf("model: %s is negative (%v)", f.name, f.v)
		}
	}
	if m.PerByte == 0 {
		return fmt.Errorf("model: PerByte must be positive")
	}
	if m.MatMulOp == 0 || m.SORPoint == 0 {
		return fmt.Errorf("model: application op costs must be positive")
	}
	return nil
}

// CopyCost returns the virtual time to copy n bytes (twin creation).
func (m CostModel) CopyCost(n int) sim.Time {
	return sim.Time(n) * m.CopyPerByte
}

// MsgTime returns the wire occupancy of a message of size bytes: the time
// the shared medium is busy carrying it.
func (m CostModel) MsgTime(size int) sim.Time {
	return sim.Time(size) * m.PerByte
}

// SendCPU returns the sender-side processor cost of one transport send
// carrying msgs protocol messages: the full send path once, plus the
// per-rider increment for every additional message coalesced into the
// envelope. msgs <= 1 is the unbatched path and costs exactly
// MsgSendCPU, so unbatched runs are unchanged to the nanosecond.
func (m CostModel) SendCPU(msgs int) sim.Time {
	if msgs <= 1 {
		return m.MsgSendCPU
	}
	return m.MsgSendCPU + sim.Time(msgs-1)*m.BatchPerMsgCPU
}
