package munin

// Contract tests for the public API: configuration validation, lifecycle
// panics, the extension knobs, tracing, and failure reporting.

import (
	"fmt"
	"strings"
	"testing"

	"munin/internal/network"
	"munin/internal/wire"
)

func expectPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("no panic, expected one mentioning %q", substr)
			return
		}
		if !strings.Contains(fmt.Sprint(r), substr) {
			t.Errorf("panic %v does not mention %q", r, substr)
		}
	}()
	f()
}

func TestNewRejectsBadProcessorCounts(t *testing.T) {
	expectPanic(t, "processors", func() { New(Config{Processors: 0}) })
	expectPanic(t, "processors", func() { New(Config{Processors: 17}) })
	expectPanic(t, "processors", func() { New(Config{Processors: -3}) })
	if rt := New(Config{Processors: 16}); rt.Processors() != 16 {
		t.Error("16 processors rejected")
	}
}

func TestDeclarationAfterRunPanics(t *testing.T) {
	rt := New(Config{Processors: 1})
	rt.DeclareWords("x", 4, Conventional)
	if err := rt.Run(func(root *Thread) {}); err != nil {
		t.Fatal(err)
	}
	expectPanic(t, "declaration after Run", func() { rt.DeclareWords("y", 4, Conventional) })
	expectPanic(t, "Run called twice", func() { _ = rt.Run(func(root *Thread) {}) })
}

func TestStatsBeforeRunPanics(t *testing.T) {
	rt := New(Config{Processors: 2})
	expectPanic(t, "Stats before Run", func() { rt.Stats() })
}

func TestZeroSizeDeclarationPanics(t *testing.T) {
	rt := New(Config{Processors: 2})
	expectPanic(t, "size", func() { rt.DeclareWords("x", 0, Conventional) })
}

func TestSpawnOnInvalidNodePanics(t *testing.T) {
	rt := New(Config{Processors: 2})
	err := rt.Run(func(root *Thread) {
		expectPanic(t, "invalid node", func() { root.Spawn(5, "bad", func(*Thread) {}) })
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockReported(t *testing.T) {
	rt := New(Config{Processors: 2})
	bar := rt.CreateBarrier(3) // only 2 threads will ever arrive
	err := rt.Run(func(root *Thread) {
		root.Spawn(1, "stuck", func(tt *Thread) { bar.Wait(tt) })
		bar.Wait(root)
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v, want a deadlock report", err)
	}
}

func TestRuntimeErrorSurfacesFromRun(t *testing.T) {
	rt := New(Config{Processors: 2})
	ro := rt.DeclareWords("ro", 4, ReadOnly)
	err := rt.Run(func(root *Thread) {
		ro.Store(root, 0, 1)
	})
	if err == nil {
		t.Fatal("write to read_only succeeded")
	}
	var re interface{ Error() string } = err
	if !strings.Contains(re.Error(), "not writable") {
		t.Errorf("err = %v, want the not-writable runtime error", err)
	}
}

func TestTraceObservesEveryMessage(t *testing.T) {
	var traced int
	var kinds = map[wire.Kind]int{}
	rt := New(Config{Processors: 2, Trace: func(env network.Envelope) {
		traced++
		kinds[env.Msg.Kind()]++
		if env.Bytes <= 0 || env.DeliveredAt < env.SentAt {
			t.Errorf("malformed envelope %+v", env)
		}
	}})
	data := rt.DeclareWords("d", 2048, WriteShared)
	bar := rt.CreateBarrier(2)
	err := rt.Run(func(root *Thread) {
		root.Spawn(1, "reader", func(tt *Thread) {
			_ = data.Load(tt, 0)
			bar.Wait(tt)
		})
		bar.Wait(root)
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if traced != st.Messages {
		t.Errorf("traced %d messages, stats report %d", traced, st.Messages)
	}
	if kinds[wire.KindReadReq] == 0 || kinds[wire.KindBarrierArrive] == 0 {
		t.Errorf("expected read and barrier traffic, got %v", kinds)
	}
}

// TestMachineOptionMatrix: the extension knobs compose; each combination
// computes the same matmul product.
func TestMachineOptionMatrix(t *testing.T) {
	const n, procs = 32, 4
	want := matmulReference(n)
	for _, cfg := range []Config{
		{Processors: procs},
		{Processors: procs, ExactCopyset: true},
		{Processors: procs, AwaitUpdateAcks: true},
		{Processors: procs, BarrierTree: true},
		{Processors: procs, BarrierTree: true, BarrierFanout: 2},
		{Processors: procs, PendingUpdates: true},
		{Processors: procs, PendingUpdates: true, BarrierTree: true, ExactCopyset: true},
	} {
		cfg := cfg
		got := matmulProgramWith(t, cfg, n)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%+v: element %d = %d, want %d", cfg, i, got[i], want[i])
				break
			}
		}
	}
}

// matmulProgramWith is matmulProgram with an explicit machine config.
func matmulProgramWith(t *testing.T, cfg Config, n int) []int32 {
	t.Helper()
	rt := New(cfg)
	procs := cfg.Processors
	a := rt.DeclareInt32Matrix("input1", n, n, ReadOnly)
	b := rt.DeclareInt32Matrix("input2", n, n, ReadOnly)
	c := rt.DeclareInt32Matrix("output", n, n, Result)
	a.Init(func(i, j int) int32 { return int32(i + j) })
	b.Init(func(i, j int) int32 { return int32(i - j) })
	done := rt.CreateBarrier(procs + 1)
	err := rt.Run(func(root *Thread) {
		for w := 0; w < procs; w++ {
			w := w
			lo, hi := w*n/procs, (w+1)*n/procs
			root.Spawn(w, "worker", func(th *Thread) {
				arow := make([]int32, n)
				brow := make([]int32, n)
				crow := make([]int32, n)
				for i := lo; i < hi; i++ {
					a.ReadRow(th, i, arow)
					for k := range crow {
						crow[k] = 0
					}
					for k := 0; k < n; k++ {
						b.ReadRow(th, k, brow)
						aik := arow[k]
						for j := 0; j < n; j++ {
							crow[j] += aik * brow[j]
						}
					}
					c.WriteRow(th, i, crow)
				}
				done.Wait(th)
			})
		}
		done.Wait(root)
	})
	if err != nil {
		t.Fatalf("%+v: %v", cfg, err)
	}
	out, err := c.Snapshot(0)
	if err != nil {
		out, err = c.SnapshotAny()
	}
	if err != nil {
		t.Fatalf("%+v: snapshot: %v", cfg, err)
	}
	return out
}

// TestInvalidateSharedEndToEnd runs the extension protocol through the
// public API: a producer's delayed invalidations force the consumer to
// re-fault, and the values still flow correctly.
func TestInvalidateSharedEndToEnd(t *testing.T) {
	rt := New(Config{Processors: 3})
	data := rt.DeclareWords("d", 2048, InvalidateShared)
	bar := rt.CreateBarrier(3 + 1)
	var got [3]uint32
	err := rt.Run(func(root *Thread) {
		for w := 0; w < 3; w++ {
			w := w
			root.Spawn(w, "node", func(tt *Thread) {
				_ = data.Load(tt, 0)
				bar.Wait(tt)
				if w == 0 {
					data.Store(tt, 0, 42)
				}
				bar.Wait(tt)
				got[w] = data.Load(tt, 0)
				bar.Wait(tt)
			})
		}
		for i := 0; i < 3; i++ {
			bar.Wait(root)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for w, v := range got {
		if v != 42 {
			t.Errorf("node %d sees %d, want 42", w, v)
		}
	}
}

// TestSnapshotAnyFindsWorkerCopies: after a run whose final copies live
// at the workers, SnapshotAny assembles the variable from any holders.
func TestSnapshotAnyFindsWorkerCopies(t *testing.T) {
	const n, procs = 16, 4
	rt := New(Config{Processors: procs})
	m := rt.DeclareInt32Matrix("m", n, n, WriteShared)
	bar := rt.CreateBarrier(procs + 1)
	err := rt.Run(func(root *Thread) {
		for w := 0; w < procs; w++ {
			w := w
			root.Spawn(w, "writer", func(tt *Thread) {
				row := make([]int32, n)
				for i := w * n / procs; i < (w+1)*n/procs; i++ {
					for j := range row {
						row[j] = int32(i*100 + j)
					}
					m.WriteRow(tt, i, row)
				}
				bar.Wait(tt)
			})
		}
		bar.Wait(root)
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.SnapshotAny()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got[i*n+j] != int32(i*100+j) {
				t.Fatalf("element (%d,%d) = %d, want %d", i, j, got[i*n+j], i*100+j)
			}
		}
	}
}

// TestAnnotationErrorsAreDescriptive: every misuse error names the
// operation and the address.
func TestAnnotationErrorsAreDescriptive(t *testing.T) {
	rt := New(Config{Processors: 2})
	red := rt.DeclareWords("red", 1, Reduction)
	err := rt.Run(func(root *Thread) {
		red.Store(root, 0, 1) // raw write to a reduction object
	})
	if err == nil {
		t.Fatal("raw write to a reduction object succeeded")
	}
	if !strings.Contains(err.Error(), "Fetch-and-") {
		t.Errorf("err %v does not explain the reduction constraint", err)
	}
}

// TestAdaptiveAnnotationRequiresEngine: declaring munin.Adaptive without
// Config.Adaptive is a programming error caught at Run.
func TestAdaptiveAnnotationRequiresEngine(t *testing.T) {
	rt := New(Config{Processors: 2})
	rt.DeclareWords("x", 4, Adaptive)
	defer func() {
		if recover() == nil {
			t.Error("Run accepted an adaptive declaration without Config.Adaptive")
		}
	}()
	_ = rt.Run(func(root *Thread) {})
}

// TestAdaptiveEndToEnd: an un-annotated (munin.Adaptive) producer-consumer
// exchange converges to the producer_consumer protocol, reports the
// switch in Stats, and computes the right values.
func TestAdaptiveEndToEnd(t *testing.T) {
	const procs, phases = 4, 8
	rt := New(Config{Processors: procs, Adaptive: true})
	data := rt.DeclareWords("data", 512, Adaptive)
	bar := rt.CreateBarrier(procs + 1)
	var sum uint32
	err := rt.Run(func(root *Thread) {
		for w := 0; w < procs; w++ {
			w := w
			root.Spawn(w, "worker", func(th *Thread) {
				for ph := 0; ph < phases; ph++ {
					if w == 0 {
						for i := 0; i < 8; i++ {
							data.Store(th, i, uint32(ph*100+i))
						}
					}
					bar.Wait(th)
					if w == 1 {
						for i := 0; i < 8; i++ {
							sum += data.Load(th, i)
						}
					}
					bar.Wait(th)
				}
			})
		}
		for ph := 0; ph < 2*phases; ph++ {
			bar.Wait(root)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var want uint32
	for ph := 0; ph < phases; ph++ {
		for i := 0; i < 8; i++ {
			want += uint32(ph*100 + i)
		}
	}
	if sum != want {
		t.Errorf("consumer sum = %d, want %d", sum, want)
	}
	st := rt.Stats()
	if st.AdaptSwitches == 0 {
		t.Error("no adaptive switches committed for an un-annotated producer-consumer object")
	}
	if a := rt.FinalAnnotations()[data.Base()]; a != ProducerConsumer {
		t.Errorf("converged to %v, want producer_consumer", a)
	}
	if st.PerKind[wire.KindAdaptCommit] == 0 {
		t.Error("no adapt-commit traffic recorded")
	}
}
