package munin

// Contract tests for the public API: configuration validation (errors
// from Run, never panics), program lifecycle, the extension knobs,
// tracing, and failure reporting.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"munin/internal/network"
	"munin/internal/wire"
)

func expectPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("no panic, expected one mentioning %q", substr)
			return
		}
		if !strings.Contains(fmt.Sprint(r), substr) {
			t.Errorf("panic %v does not mention %q", r, substr)
		}
	}()
	f()
}

// expectRunError asserts Run fails with an error mentioning substr.
func expectRunError(t *testing.T, substr string, p *Program, opts ...RunOption) {
	t.Helper()
	res, err := p.Run(context.Background(), func(root *Thread) {}, opts...)
	if err == nil {
		t.Errorf("Run succeeded, want an error mentioning %q", substr)
		return
	}
	if res != nil {
		t.Error("failed Run returned a non-nil Result")
	}
	if !strings.Contains(err.Error(), substr) {
		t.Errorf("err %v does not mention %q", err, substr)
	}
}

// TestConfigValidationErrors: every configuration problem is an error
// surfaced from Run — processor counts outside 1–MaxProcessors, a
// barrier-tree fanout below 2, an unknown transport or home policy —
// never a panic.
func TestConfigValidationErrors(t *testing.T) {
	t.Run("ZeroProcessors", func(t *testing.T) {
		expectRunError(t, "processors", NewProgram(0))
	})
	t.Run("TooManyProcessors", func(t *testing.T) {
		expectRunError(t, "processors", NewProgram(MaxProcessors+1))
	})
	t.Run("NegativeProcessors", func(t *testing.T) {
		expectRunError(t, "processors", NewProgram(-3))
	})
	t.Run("WithProcessorsOverride", func(t *testing.T) {
		expectRunError(t, "processors", NewProgram(4), WithProcessors(MaxProcessors+1))
	})
	t.Run("UnknownHomePolicy", func(t *testing.T) {
		expectRunError(t, "home policy", NewProgram(2), WithHomePolicy("shuffled"))
	})
	t.Run("BarrierFanoutBelowTwo", func(t *testing.T) {
		expectRunError(t, "fanout", NewProgram(4), WithBarrierTree(1))
	})
	t.Run("UnknownTransport", func(t *testing.T) {
		expectRunError(t, "transport", NewProgram(2), WithTransport("carrier-pigeon"))
	})
	t.Run("SixteenProcessorsOK", func(t *testing.T) {
		if _, err := NewProgram(16).Run(context.Background(), func(root *Thread) {}); err != nil {
			t.Errorf("16 processors rejected: %v", err)
		}
	})
	t.Run("MaxProcessorsOK", func(t *testing.T) {
		if _, err := NewProgram(MaxProcessors).Run(context.Background(), func(root *Thread) {}); err != nil {
			t.Errorf("%d processors rejected: %v", MaxProcessors, err)
		}
	})
	t.Run("DefaultBarrierFanoutOK", func(t *testing.T) {
		if _, err := NewProgram(4).Run(context.Background(), func(root *Thread) {}, WithBarrierTree(0)); err != nil {
			t.Errorf("default barrier fanout rejected: %v", err)
		}
	})
}

func TestDeclarationAfterRunPanics(t *testing.T) {
	p := NewProgram(1)
	Declare[uint32](p, "x", 4, Conventional)
	if _, err := p.Run(context.Background(), func(root *Thread) {}); err != nil {
		t.Fatal(err)
	}
	expectPanic(t, "declaration after Run", func() { Declare[uint32](p, "y", 4, Conventional) })
	expectPanic(t, "declaration after Run", func() { p.CreateLock() })
	expectPanic(t, "declaration after Run", func() { p.CreateBarrier(2) })
}

func TestZeroSizeDeclarationPanics(t *testing.T) {
	p := NewProgram(2)
	expectPanic(t, "size", func() { Declare[uint32](p, "x", 0, Conventional) })
}

// TestInitRejectsOversizedData: initial contents longer than the
// declared variable are rejected instead of silently spilling into the
// following declaration's pages.
func TestInitRejectsOversizedData(t *testing.T) {
	p := NewProgram(2)
	x := Declare[uint32](p, "x", 4, Conventional)
	Declare[uint32](p, "y", 4, Conventional) // the would-be spill victim
	expectPanic(t, "initial values", func() { x.Init(1, 2, 3, 4, 5) })
}

func TestSpawnOnInvalidNodePanics(t *testing.T) {
	p := NewProgram(2)
	_, err := p.Run(context.Background(), func(root *Thread) {
		expectPanic(t, "invalid node", func() { root.Spawn(5, "bad", func(*Thread) {}) })
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockReported(t *testing.T) {
	p := NewProgram(2)
	bar := p.CreateBarrier(3) // only 2 threads will ever arrive
	_, err := p.Run(context.Background(), func(root *Thread) {
		root.Spawn(1, "stuck", func(tt *Thread) { bar.Wait(tt) })
		bar.Wait(root)
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v, want a deadlock report", err)
	}
}

func TestRuntimeErrorSurfacesFromRun(t *testing.T) {
	p := NewProgram(2)
	ro := Declare[uint32](p, "ro", 4, ReadOnly)
	_, err := p.Run(context.Background(), func(root *Thread) {
		ro.Set(root, 0, 1)
	})
	if err == nil {
		t.Fatal("write to read_only succeeded")
	}
	if !strings.Contains(err.Error(), "not writable") {
		t.Errorf("err = %v, want the not-writable runtime error", err)
	}
}

func TestTraceObservesEveryMessage(t *testing.T) {
	var traced int
	var kinds = map[wire.Kind]int{}
	p := NewProgram(2)
	data := Declare[uint32](p, "d", 2048, WriteShared)
	bar := p.CreateBarrier(2)
	res, err := p.Run(context.Background(), func(root *Thread) {
		root.Spawn(1, "reader", func(tt *Thread) {
			_ = data.Get(tt, 0)
			bar.Wait(tt)
		})
		bar.Wait(root)
	}, WithTrace(func(env network.Envelope) {
		traced++
		kinds[env.Msg.Kind()]++
		if env.Bytes <= 0 || env.DeliveredAt < env.SentAt {
			t.Errorf("malformed envelope %+v", env)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats()
	if traced != st.Messages {
		t.Errorf("traced %d messages, stats report %d", traced, st.Messages)
	}
	if kinds[wire.KindReadReq] == 0 || kinds[wire.KindBarrierArrive] == 0 {
		t.Errorf("expected read and barrier traffic, got %v", kinds)
	}
}

// buildMatmulProgram declares a small matrix multiply and returns the
// program, its root function and the output matrix — the canonical
// reusable program the Program/Run tests execute repeatedly.
func buildMatmulProgram(procs, n int, opts ...DeclOption) (*Program, func(*Thread), *Matrix[int32]) {
	p := NewProgram(procs)
	a := DeclareMatrix[int32](p, "input1", n, n, ReadOnly, opts...)
	b := DeclareMatrix[int32](p, "input2", n, n, ReadOnly, opts...)
	c := DeclareMatrix[int32](p, "output", n, n, ResultObject)
	a.Init(func(i, j int) int32 { return int32(i + j) })
	b.Init(func(i, j int) int32 { return int32(i - j) })
	done := p.CreateBarrier(procs + 1)
	root := func(root *Thread) {
		for w := 0; w < procs; w++ {
			w := w
			lo, hi := w*n/procs, (w+1)*n/procs
			root.Spawn(w, "worker", func(th *Thread) {
				arow := make([]int32, n)
				brow := make([]int32, n)
				crow := make([]int32, n)
				for i := lo; i < hi; i++ {
					a.ReadRow(th, i, arow)
					for k := range crow {
						crow[k] = 0
					}
					for k := 0; k < n; k++ {
						b.ReadRow(th, k, brow)
						aik := arow[k]
						for j := 0; j < n; j++ {
							crow[j] += aik * brow[j]
						}
					}
					c.WriteRow(th, i, crow)
				}
				done.Wait(th)
			})
		}
		done.Wait(root)
	}
	return p, root, c
}

// TestMachineOptionMatrix: the extension knobs compose; each combination
// computes the same matmul product — and every combination executes the
// SAME Program value, once per option set.
func TestMachineOptionMatrix(t *testing.T) {
	const n, procs = 32, 4
	want := matmulReference(n)
	prog, root, c := buildMatmulProgram(procs, n)
	for _, run := range []struct {
		name string
		opts []RunOption
	}{
		{"baseline", nil},
		{"exact-copyset", []RunOption{WithExactCopyset()}},
		{"acked-flush", []RunOption{WithAwaitUpdateAcks()}},
		{"barrier-tree", []RunOption{WithBarrierTree(0)}},
		{"barrier-tree-2", []RunOption{WithBarrierTree(2)}},
		{"pending-updates", []RunOption{WithPendingUpdates()}},
		{"all", []RunOption{WithPendingUpdates(), WithBarrierTree(0), WithExactCopyset()}},
	} {
		res, err := prog.Run(context.Background(), root, run.opts...)
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		got, err := c.Snapshot(res, 0)
		if err != nil {
			got, err = c.SnapshotAny(res)
		}
		if err != nil {
			t.Fatalf("%s: snapshot: %v", run.name, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: element %d = %d, want %d", run.name, i, got[i], want[i])
				break
			}
		}
	}
}

// TestInvalidateSharedEndToEnd runs the extension protocol through the
// public API: a producer's delayed invalidations force the consumer to
// re-fault, and the values still flow correctly.
func TestInvalidateSharedEndToEnd(t *testing.T) {
	p := NewProgram(3)
	data := Declare[uint32](p, "d", 2048, InvalidateShared)
	bar := p.CreateBarrier(3 + 1)
	var got [3]uint32
	_, err := p.Run(context.Background(), func(root *Thread) {
		for w := 0; w < 3; w++ {
			w := w
			root.Spawn(w, "node", func(tt *Thread) {
				_ = data.Get(tt, 0)
				bar.Wait(tt)
				if w == 0 {
					data.Set(tt, 0, 42)
				}
				bar.Wait(tt)
				got[w] = data.Get(tt, 0)
				bar.Wait(tt)
			})
		}
		for i := 0; i < 3; i++ {
			bar.Wait(root)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for w, v := range got {
		if v != 42 {
			t.Errorf("node %d sees %d, want 42", w, v)
		}
	}
}

// TestSnapshotAnyFindsWorkerCopies: after a run whose final copies live
// at the workers, SnapshotAny assembles the variable from any holders.
func TestSnapshotAnyFindsWorkerCopies(t *testing.T) {
	const n, procs = 16, 4
	p := NewProgram(procs)
	m := DeclareMatrix[int32](p, "m", n, n, WriteShared)
	bar := p.CreateBarrier(procs + 1)
	res, err := p.Run(context.Background(), func(root *Thread) {
		for w := 0; w < procs; w++ {
			w := w
			root.Spawn(w, "writer", func(tt *Thread) {
				row := make([]int32, n)
				for i := w * n / procs; i < (w+1)*n/procs; i++ {
					for j := range row {
						row[j] = int32(i*100 + j)
					}
					m.WriteRow(tt, i, row)
				}
				bar.Wait(tt)
			})
		}
		bar.Wait(root)
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.SnapshotAny(res)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got[i*n+j] != int32(i*100+j) {
				t.Fatalf("element (%d,%d) = %d, want %d", i, j, got[i*n+j], i*100+j)
			}
		}
	}
}

// TestAnnotationErrorsAreDescriptive: every misuse error names the
// operation and the address.
func TestAnnotationErrorsAreDescriptive(t *testing.T) {
	p := NewProgram(2)
	red := Declare[uint32](p, "red", 1, Reduction)
	_, err := p.Run(context.Background(), func(root *Thread) {
		red.Set(root, 0, 1) // raw write to a reduction object
	})
	if err == nil {
		t.Fatal("raw write to a reduction object succeeded")
	}
	if !strings.Contains(err.Error(), "Fetch-and-") {
		t.Errorf("err %v does not explain the reduction constraint", err)
	}
}

// TestAdaptiveAnnotationRequiresEngine: declaring munin.Adaptive without
// WithAdaptive is a configuration error reported by Run.
func TestAdaptiveAnnotationRequiresEngine(t *testing.T) {
	p := NewProgram(2)
	Declare[uint32](p, "x", 4, Adaptive)
	expectRunError(t, "adaptive", p)
}

// TestAdaptiveEndToEnd: an un-annotated (munin.Adaptive) producer-consumer
// exchange converges to the producer_consumer protocol, reports the
// switch in the Result, and computes the right values.
func TestAdaptiveEndToEnd(t *testing.T) {
	const procs, phases = 4, 8
	p := NewProgram(procs)
	data := Declare[uint32](p, "data", 512, Adaptive)
	bar := p.CreateBarrier(procs + 1)
	var sum uint32
	res, err := p.Run(context.Background(), func(root *Thread) {
		for w := 0; w < procs; w++ {
			w := w
			root.Spawn(w, "worker", func(th *Thread) {
				for ph := 0; ph < phases; ph++ {
					if w == 0 {
						for i := 0; i < 8; i++ {
							data.Set(th, i, uint32(ph*100+i))
						}
					}
					bar.Wait(th)
					if w == 1 {
						for i := 0; i < 8; i++ {
							sum += data.Get(th, i)
						}
					}
					bar.Wait(th)
				}
			})
		}
		for ph := 0; ph < 2*phases; ph++ {
			bar.Wait(root)
		}
	}, WithAdaptive())
	if err != nil {
		t.Fatal(err)
	}
	var want uint32
	for ph := 0; ph < phases; ph++ {
		for i := 0; i < 8; i++ {
			want += uint32(ph*100 + i)
		}
	}
	if sum != want {
		t.Errorf("consumer sum = %d, want %d", sum, want)
	}
	st := res.Stats()
	if st.AdaptSwitches == 0 {
		t.Error("no adaptive switches committed for an un-annotated producer-consumer object")
	}
	if a := res.FinalAnnotations()[data.Base()]; a != ProducerConsumer {
		t.Errorf("converged to %v, want producer_consumer", a)
	}
	if st.PerKind[wire.KindAdaptCommit] == 0 {
		t.Error("no adapt-commit traffic recorded")
	}
}
