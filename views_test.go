package munin

// Tests for the generic typed views: element accessors for every element
// type (including 8-byte float64), initial contents, snapshots and their
// error paths, and the reduction-surface type gate.

import (
	"context"
	"strings"
	"testing"
)

// roundTripArray exercises Init/Get/Set/Read/Write/Snapshot for one
// element type end to end on a 2-node machine.
func roundTripArray[T Elem](t *testing.T, mk func(i int) T) {
	t.Helper()
	const n = 1500 // > one 8 KB page for float64: multi-object variable
	p := NewProgram(2)
	a := Declare[T](p, "a", n, WriteShared)
	a.InitFunc(mk)
	bar := p.CreateBarrier(2)
	res, err := p.Run(context.Background(), func(root *Thread) {
		root.Spawn(1, "worker", func(tt *Thread) {
			// Element access.
			if got := a.Get(tt, 7); got != mk(7) {
				t.Errorf("Get(7) = %v, want %v", got, mk(7))
			}
			a.Set(tt, 7, mk(9999))
			if got := a.Get(tt, 7); got != mk(9999) {
				t.Errorf("Get after Set = %v, want %v", got, mk(9999))
			}
			// Bulk access across page boundaries.
			buf := make([]T, n)
			a.Read(tt, 0, buf)
			if buf[n-1] != mk(n-1) {
				t.Errorf("Read: last element %v, want %v", buf[n-1], mk(n-1))
			}
			for i := range buf {
				buf[i] = mk(2 * i)
			}
			a.Write(tt, 0, buf)
			bar.Wait(tt)
		})
		bar.Wait(root)
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := a.SnapshotAny(res)
	if err != nil {
		t.Fatal(err)
	}
	for i := range snap {
		if snap[i] != mk(2*i) {
			t.Fatalf("snapshot[%d] = %v, want %v", i, snap[i], mk(2*i))
		}
	}
}

func TestArrayRoundTripInt32(t *testing.T) {
	roundTripArray[int32](t, func(i int) int32 { return int32(3*i - 1000) })
}

func TestArrayRoundTripUint32(t *testing.T) {
	roundTripArray[uint32](t, func(i int) uint32 { return uint32(i) * 2654435761 })
}

func TestArrayRoundTripFloat32(t *testing.T) {
	roundTripArray[float32](t, func(i int) float32 { return float32(i) + float32(i%10)/10 })
}

func TestArrayRoundTripFloat64(t *testing.T) {
	roundTripArray[float64](t, func(i int) float64 { return float64(i)*1e6 + float64(i%7)/7 })
}

// roundTripMatrix exercises the two-dimensional surface for one element
// type, with rows that straddle page boundaries.
func roundTripMatrix[T Elem](t *testing.T, mk func(i, j int) T) {
	t.Helper()
	const rows, cols = 5, 1000 // rows split mid-page for 4-byte T
	p := NewProgram(2)
	m := DeclareMatrix[T](p, "m", rows, cols, WriteShared)
	m.Init(mk)
	res, err := p.Run(context.Background(), func(root *Thread) {
		row := make([]T, cols)
		for i := 0; i < rows; i++ {
			m.ReadRow(root, i, row)
			for j := 0; j < cols; j += 97 {
				if row[j] != mk(i, j) {
					t.Fatalf("row %d col %d = %v, want %v", i, j, row[j], mk(i, j))
				}
			}
		}
		if got := m.Get(root, 3, 4); got != mk(3, 4) {
			t.Errorf("Get(3,4) = %v, want %v", got, mk(3, 4))
		}
		m.Set(root, 3, 4, mk(100, 100))
		if got := m.Get(root, 3, 4); got != mk(100, 100) {
			t.Errorf("Get after Set = %v", got)
		}
		for j := range row {
			row[j] = mk(7, j)
		}
		m.WriteRow(root, 4, row)
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap[3*cols+4] != mk(100, 100) || snap[4*cols+12] != mk(7, 12) {
		t.Errorf("snapshot disagrees: %v %v", snap[3*cols+4], snap[4*cols+12])
	}
}

func TestMatrixRoundTripInt32(t *testing.T) {
	roundTripMatrix[int32](t, func(i, j int) int32 { return int32(i*1000 + j) })
}

func TestMatrixRoundTripFloat32(t *testing.T) {
	roundTripMatrix[float32](t, func(i, j int) float32 { return float32(i) + float32(j)/1024 })
}

func TestMatrixRoundTripFloat64(t *testing.T) {
	roundTripMatrix[float64](t, func(i, j int) float64 { return float64(i)*1e9 + float64(j)*1e-3 })
}

func TestMatrixRowAddrBounds(t *testing.T) {
	p := NewProgram(1)
	m := DeclareMatrix[int32](p, "m", 4, 4, Conventional)
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "out of range") {
			t.Errorf("panic = %v, want out-of-range", r)
		}
	}()
	m.RowAddr(4)
}

func TestArrayIndexBounds(t *testing.T) {
	p := NewProgram(1)
	a := Declare[float64](p, "a", 4, Conventional)
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "out of range") {
			t.Errorf("panic = %v, want out-of-range", r)
		}
	}()
	a.Addr(-1)
}

func TestWordsInitAndAccess(t *testing.T) {
	p := NewProgram(2)
	w := Declare[uint32](p, "w", 8, Conventional)
	w.Init(10, 20, 30)
	if w.Len() != 8 {
		t.Fatalf("Len = %d", w.Len())
	}
	_, err := p.Run(context.Background(), func(root *Thread) {
		if v := w.Get(root, 1); v != 20 {
			t.Errorf("Get(1) = %d, want 20", v)
		}
		if v := w.Get(root, 5); v != 0 {
			t.Errorf("Get(5) = %d, want zero fill", v)
		}
		w.Set(root, 5, 55)
		if v := w.Get(root, 5); v != 55 {
			t.Errorf("Get after Set = %d", v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReInitZeroFillsTail: Init installs a full-size buffer, so
// re-initializing with fewer values clears the previously set tail (the
// documented zero-fill contract).
func TestReInitZeroFillsTail(t *testing.T) {
	p := NewProgram(1)
	a := Declare[uint32](p, "a", 4, Conventional)
	a.Init(1, 2, 3, 4)
	a.Init(9)
	_, err := p.Run(context.Background(), func(root *Thread) {
		if got := a.Get(root, 0); got != 9 {
			t.Errorf("element 0 = %d, want 9", got)
		}
		for i := 1; i < 4; i++ {
			if got := a.Get(root, i); got != 0 {
				t.Errorf("element %d = %d, want zero fill", i, got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestObjectsAndBases(t *testing.T) {
	p := NewProgram(1)
	// A 4-page variable splits into 4 page-sized objects unless declared
	// SingleObject.
	split := DeclareMatrix[int32](p, "split", 64, 128, WriteShared) // 32 KB
	single := DeclareMatrix[float32](p, "single", 64, 128, ReadOnly, WithSingleObject())
	if len(split.Objects()) != 4 {
		t.Errorf("split into %d objects, want 4", len(split.Objects()))
	}
	if len(single.Objects()) != 1 {
		t.Errorf("single-object variable has %d objects", len(single.Objects()))
	}
	if split.Base() == single.Base() {
		t.Error("variables share a base address")
	}
	if split.Objects()[1]-split.Objects()[0] != 8192 {
		t.Errorf("object stride %d, want page size", split.Objects()[1]-split.Objects()[0])
	}
	// float64 arrays lay out at 8 bytes per element.
	wide := Declare[float64](p, "wide", 1024, Conventional) // exactly one page
	if len(wide.Objects()) != 1 {
		t.Errorf("1024 float64s split into %d objects, want 1", len(wide.Objects()))
	}
}

func TestFetchAndMinMaxSemantics(t *testing.T) {
	p := NewProgram(2)
	w := Declare[uint32](p, "red", 4, Reduction)
	w.Init(100)
	_, err := p.Run(context.Background(), func(root *Thread) {
		if old := w.FetchAndMin(root, 0, 150); old != 100 {
			t.Errorf("FetchAndMin returned %d, want 100", old)
		}
		if v := w.Get(root, 0); v != 100 {
			t.Errorf("min(100,150) stored %d", v)
		}
		if old := w.FetchAndMin(root, 0, 40); old != 100 {
			t.Errorf("FetchAndMin returned %d, want 100", old)
		}
		if v := w.Get(root, 0); v != 40 {
			t.Errorf("min(100,40) stored %d", v)
		}
		if old := w.FetchAndAdd(root, 1, 7); old != 0 {
			t.Errorf("FetchAndAdd returned %d, want 0", old)
		}
		if v := w.Get(root, 1); v != 7 {
			t.Errorf("add stored %d", v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFetchAndOpAcrossPages: Fetch-and-Φ on a multi-page reduction
// array resolves the element's containing page object, so in-bounds
// indices beyond the first page work like every other accessor.
func TestFetchAndOpAcrossPages(t *testing.T) {
	const n = 4096 // 16 KB: two page-sized objects
	p := NewProgram(2)
	hist := Declare[uint32](p, "hist", n, Reduction)
	_, err := p.Run(context.Background(), func(root *Thread) {
		root.Spawn(1, "worker", func(tt *Thread) {
			if old := hist.FetchAndAdd(tt, 3000, 5); old != 0 {
				t.Errorf("FetchAndAdd(3000) returned %d, want 0", old)
			}
			if v := hist.Get(tt, 3000); v != 5 {
				t.Errorf("element 3000 = %d after add, want 5", v)
			}
			if old := hist.FetchAndAdd(tt, 2048, 7); old != 0 {
				t.Errorf("FetchAndAdd(2048) returned %d, want 0", old)
			}
			if old := hist.FetchAndAdd(tt, 0, 1); old != 0 {
				t.Errorf("FetchAndAdd(0) returned %d, want 0", old)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFetchAndOpRejectsFloats: the Fetch-and-Φ surface is defined on
// 32-bit integer words; float element types are a type error caught at
// the call.
func TestFetchAndOpRejectsFloats(t *testing.T) {
	p := NewProgram(1)
	f := Declare[float32](p, "f", 4, Reduction)
	d := Declare[float64](p, "d", 4, Reduction)
	_, err := p.Run(context.Background(), func(root *Thread) {
		expectPanic(t, "integer", func() { f.FetchAndAdd(root, 0, 1) })
		expectPanic(t, "integer", func() { d.FetchAndMin(root, 0, 1) })
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultiPageVariableRoundTrips(t *testing.T) {
	// Rows that straddle page boundaries read and write correctly.
	const rows, cols = 5, 1000 // 4000 B rows: pages split mid-row
	p := NewProgram(2)
	m := DeclareMatrix[int32](p, "m", rows, cols, WriteShared)
	m.Init(func(i, j int) int32 { return int32(i*cols + j) })
	_, err := p.Run(context.Background(), func(root *Thread) {
		row := make([]int32, cols)
		for i := 0; i < rows; i++ {
			m.ReadRow(root, i, row)
			for j := 0; j < cols; j += 97 {
				if row[j] != int32(i*cols+j) {
					t.Fatalf("row %d col %d = %d, want %d", i, j, row[j], i*cols+j)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
