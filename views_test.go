package munin

// Tests for the typed shared-variable views: element accessors, initial
// contents, snapshots and their error paths.

import (
	"strings"
	"testing"
)

func TestFloat32MatrixElementAccess(t *testing.T) {
	rt := New(Config{Processors: 2})
	m := rt.DeclareFloat32Matrix("grid", 8, 8, WriteShared)
	m.Init(func(i, j int) float32 { return float32(i) + float32(j)/10 })
	if m.Rows() != 8 || m.Cols() != 8 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	bar := rt.CreateBarrier(2)
	err := rt.Run(func(root *Thread) {
		root.Spawn(1, "worker", func(tt *Thread) {
			if got := m.Get(tt, 3, 4); got != 3.4 {
				t.Errorf("Get(3,4) = %v, want 3.4", got)
			}
			m.Set(tt, 3, 4, 99.5)
			if got := m.Get(tt, 3, 4); got != 99.5 {
				t.Errorf("Get after Set = %v", got)
			}
			row := make([]float32, 8)
			m.ReadRow(tt, 0, row)
			if row[7] != 0.7 {
				t.Errorf("row0[7] = %v, want 0.7", row[7])
			}
			m.WriteRow(tt, 7, []float32{1, 2, 3, 4, 5, 6, 7, 8})
			bar.Wait(tt)
		})
		bar.Wait(root)
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.SnapshotAny()
	if err != nil {
		t.Fatal(err)
	}
	if snap[3*8+4] != 99.5 || snap[7*8+0] != 1 {
		t.Errorf("snapshot disagrees: %v %v", snap[3*8+4], snap[7*8])
	}
}

func TestInt32MatrixRowAddrBounds(t *testing.T) {
	rt := New(Config{Processors: 1})
	m := rt.DeclareInt32Matrix("m", 4, 4, Conventional)
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "out of range") {
			t.Errorf("panic = %v, want out-of-range", r)
		}
	}()
	m.RowAddr(4)
}

func TestFloat32MatrixRowAddrBounds(t *testing.T) {
	rt := New(Config{Processors: 1})
	m := rt.DeclareFloat32Matrix("m", 4, 4, Conventional)
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "out of range") {
			t.Errorf("panic = %v, want out-of-range", r)
		}
	}()
	m.RowAddr(-1)
}

func TestSnapshotBeforeRunFails(t *testing.T) {
	rt := New(Config{Processors: 2})
	m := rt.DeclareInt32Matrix("m", 4, 4, Conventional)
	f := rt.DeclareFloat32Matrix("f", 4, 4, Conventional)
	if _, err := m.Snapshot(0); err == nil {
		t.Error("Int32 Snapshot before Run succeeded")
	}
	if _, err := m.SnapshotAny(); err == nil {
		t.Error("Int32 SnapshotAny before Run succeeded")
	}
	if _, err := f.Snapshot(0); err == nil {
		t.Error("Float32 Snapshot before Run succeeded")
	}
	if _, err := f.SnapshotRows(0, 0, 2); err == nil {
		t.Error("SnapshotRows before Run succeeded")
	}
}

func TestWordsInitAndAccess(t *testing.T) {
	rt := New(Config{Processors: 2})
	w := rt.DeclareWords("w", 8, Conventional)
	w.Init(10, 20, 30)
	if w.Len() != 8 {
		t.Fatalf("Len = %d", w.Len())
	}
	err := rt.Run(func(root *Thread) {
		if v := w.Load(root, 1); v != 20 {
			t.Errorf("Load(1) = %d, want 20", v)
		}
		if v := w.Load(root, 5); v != 0 {
			t.Errorf("Load(5) = %d, want zero fill", v)
		}
		w.Store(root, 5, 55)
		if v := w.Load(root, 5); v != 55 {
			t.Errorf("Load after Store = %d", v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestObjectsAndBases(t *testing.T) {
	rt := New(Config{Processors: 1})
	// A 4-page variable splits into 4 page-sized objects unless declared
	// SingleObject.
	split := rt.DeclareInt32Matrix("split", 64, 128, WriteShared) // 32 KB
	single := rt.DeclareFloat32Matrix("single", 64, 128, ReadOnly, WithSingleObject())
	if len(split.Objects()) != 4 {
		t.Errorf("split into %d objects, want 4", len(split.Objects()))
	}
	if len(single.Objects()) != 1 {
		t.Errorf("single-object variable has %d objects", len(single.Objects()))
	}
	if split.Base() == single.Base() {
		t.Error("variables share a base address")
	}
	if split.Objects()[1]-split.Objects()[0] != 8192 {
		t.Errorf("object stride %d, want page size", split.Objects()[1]-split.Objects()[0])
	}
}

func TestFetchAndMinMaxSemantics(t *testing.T) {
	rt := New(Config{Processors: 2})
	w := rt.DeclareWords("red", 4, Reduction)
	w.Init(100)
	err := rt.Run(func(root *Thread) {
		if old := w.FetchAndMin(root, 0, 150); old != 100 {
			t.Errorf("FetchAndMin returned %d, want 100", old)
		}
		if v := w.Load(root, 0); v != 100 {
			t.Errorf("min(100,150) stored %d", v)
		}
		if old := w.FetchAndMin(root, 0, 40); old != 100 {
			t.Errorf("FetchAndMin returned %d, want 100", old)
		}
		if v := w.Load(root, 0); v != 40 {
			t.Errorf("min(100,40) stored %d", v)
		}
		if old := w.FetchAndAdd(root, 1, 7); old != 0 {
			t.Errorf("FetchAndAdd returned %d, want 0", old)
		}
		if v := w.Load(root, 1); v != 7 {
			t.Errorf("add stored %d", v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultiPageVariableRoundTrips(t *testing.T) {
	// Rows that straddle page boundaries read and write correctly.
	const rows, cols = 5, 1000 // 4000 B rows: pages split mid-row
	rt := New(Config{Processors: 2})
	m := rt.DeclareInt32Matrix("m", rows, cols, WriteShared)
	m.Init(func(i, j int) int32 { return int32(i*cols + j) })
	err := rt.Run(func(root *Thread) {
		row := make([]int32, cols)
		for i := 0; i < rows; i++ {
			m.ReadRow(root, i, row)
			for j := 0; j < cols; j += 97 {
				if row[j] != int32(i*cols+j) {
					t.Fatalf("row %d col %d = %d, want %d", i, j, row[j], i*cols+j)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
