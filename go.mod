module munin

go 1.23
